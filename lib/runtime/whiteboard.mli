(** Per-node whiteboards.

    Local storage where agents read, write and erase colored signs. The
    engine grants access in mutual exclusion (a whole node visit is
    atomic). The revision counter lets waiting agents sleep until the
    board changes. *)

type t

val create : unit -> t
val signs : t -> Sign.t list
(** Current signs, oldest first. *)

val post : t -> Sign.t -> unit
val erase : t -> color:Qe_color.Color.t -> tag:string -> int
(** Removes all signs of that color and tag; returns how many were
    erased. *)

val find : t -> tag:string -> Sign.t list
val find_by : t -> color:Qe_color.Color.t -> tag:string -> Sign.t list
val revision : t -> int
(** Bumped by every successful {!post} and non-empty {!erase}. *)

val size : t -> int
