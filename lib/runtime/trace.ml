module Color = Qe_color.Color

type t = { mutable rev_events : Engine.event list; mutable count : int }

let recorder () =
  let t = { rev_events = []; count = 0 } in
  ( t,
    fun e ->
      t.rev_events <- e :: t.rev_events;
      t.count <- t.count + 1 )

let events t = List.rev t.rev_events
let length t = t.count

let moves_of t c =
  List.length
    (List.filter
       (function
         | Engine.Moved { agent; _ } -> Color.equal agent c
         | _ -> false)
       t.rev_events)

let posts_of t c =
  List.length
    (List.filter
       (function
         | Engine.Posted { agent; _ } -> Color.equal agent c
         | _ -> false)
       t.rev_events)

let tag_prefix tag =
  match String.index_opt tag ':' with
  | Some i -> String.sub tag 0 i
  | None -> tag

let tag_histogram t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Engine.Posted { tag; _ } ->
          let p = tag_prefix tag in
          Hashtbl.replace tbl p
            (1 + try Hashtbl.find tbl p with Not_found -> 0)
      | _ -> ())
    t.rev_events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         if a <> b then compare b a else compare ka kb)

let nodes_touched t =
  List.filter_map
    (function Engine.Posted { node; _ } -> Some node | _ -> None)
    t.rev_events
  |> List.sort_uniq compare

let timeline ?limit t =
  let buf = Buffer.create 1024 in
  let all = events t in
  let all =
    match limit with
    | None -> all
    | Some k -> List.filteri (fun i _ -> i < k) all
  in
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Format.asprintf "%4d  %a\n" (i + 1) Engine.pp_event e))
    all;
  (match limit with
  | Some k when t.count > k ->
      Buffer.add_string buf
        (Printf.sprintf "      ... %d more events\n" (t.count - k))
  | _ -> ());
  Buffer.contents buf

let verdict_counts t =
  let leaders = ref 0 and defeated = ref 0 and failed = ref 0
  and aborted = ref 0 in
  List.iter
    (function
      | Engine.Halted { verdict; _ } -> (
          match verdict with
          | Protocol.Leader -> incr leaders
          | Protocol.Defeated -> incr defeated
          | Protocol.Election_failed -> incr failed
          | Protocol.Aborted _ -> incr aborted)
      | _ -> ())
    t.rev_events;
  (!leaders, !defeated, !failed, !aborted)

let summary t =
  let count p = List.length (List.filter p t.rev_events) in
  let wakes = count (function Engine.Woke _ -> true | _ -> false) in
  let moves = count (function Engine.Moved _ -> true | _ -> false) in
  let posts = count (function Engine.Posted _ -> true | _ -> false) in
  let erases = count (function Engine.Erased _ -> true | _ -> false) in
  let halts = count (function Engine.Halted _ -> true | _ -> false) in
  let leaders, defeated, failed, aborted = verdict_counts t in
  let verdicts =
    [ (leaders, "leader"); (defeated, "defeated"); (failed, "failed");
      (aborted, "aborted") ]
    |> List.filter (fun (n, _) -> n > 0)
    |> List.map (fun (n, what) -> Printf.sprintf "%d %s" n what)
    |> String.concat ", "
  in
  let verdicts = if verdicts = "" then "none" else verdicts in
  let hist =
    tag_histogram t
    |> List.map (fun (tag, n) -> Printf.sprintf "%s=%d" tag n)
    |> String.concat ", "
  in
  Printf.sprintf
    "%d events: %d wakes, %d moves, %d posts, %d erases, %d halts (%s); \
     posts by tag: %s"
    t.count wakes moves posts erases halts verdicts hist
