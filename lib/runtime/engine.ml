module Graph = Qe_graph.Graph
module Labeling = Qe_graph.Labeling
module Color = Qe_color.Color
module Symbol = Qe_color.Symbol
module FKind = Qe_fault.Kind
module FPlan = Qe_fault.Plan
module FInj = Qe_fault.Injector
module Watchdog = Qe_fault.Watchdog

type strategy =
  | Round_robin
  | Random_fair of int
  | Lifo
  | Fifo_mailbox
  | Synchronous

let strategy_name = function
  | Round_robin -> "round-robin"
  | Random_fair _ -> "random"
  | Lifo -> "lifo"
  | Fifo_mailbox -> "fifo-mailbox"
  | Synchronous -> "synchronous"

type agent_stats = {
  moves : int;
  posts : int;
  erases : int;
  reads : int;
  turns : int;
}

type inconsistency = {
  reason : string;
  conflicting : (Color.t * Protocol.verdict) list;
}

type outcome =
  | Elected of Color.t
  | Declared_unsolvable
  | Deadlock
  | Step_limit
  | Timeout of Watchdog.reason
  | Inconsistent of inconsistency

type result = {
  outcome : outcome;
  verdicts : (Color.t * Protocol.verdict) list;
  per_agent : (Color.t * agent_stats) list;
  final_locations : (Color.t * int) list;
  total_moves : int;
  total_accesses : int;
  scheduler_turns : int;
  wall_time_ns : int;
  faults_injected : (FKind.t * int) list;
}

let home_tag = "home-base"

type resume =
  | Start
  | Resume of (Protocol.observation, unit) Effect.Deep.continuation

type status =
  | Asleep
  | Ready of resume
  | Waiting of (Protocol.observation, unit) Effect.Deep.continuation * int
  | Finished of Protocol.verdict

type agent = {
  idx : int;
  color : Color.t;
  home : int;
  mutable loc : int;
  mutable entry : Symbol.t option;
  mutable status : status;
  mutable runnable : bool;
      (* dirty bit kept in sync with [status] and board revisions so the
         scheduler never rescans the whiteboards *)
  mutable last_enabled : int;
  mutable wake_due : int;
      (* scheduler turn at which a fault-delayed wake is delivered;
         -1 = no delayed wake pending *)
  mutable moves : int;
  mutable posts : int;
  mutable erases : int;
  mutable reads : int;
  mutable turns : int;
}

type event =
  | Woke of { agent : Color.t }
  | Moved of { agent : Color.t; from_node : int; to_node : int }
  | Posted of { agent : Color.t; node : int; tag : string }
  | Erased of { agent : Color.t; node : int; tag : string; count : int }
  | Halted of { agent : Color.t; verdict : Protocol.verdict }
  | Crashed of { agent : Color.t; node : int }
  | Sign_lost of { agent : Color.t; node : int; tag : string }
  | Sign_duplicated of { agent : Color.t; node : int; tag : string }
  | Wake_delayed of { agent : Color.t; until_turn : int }
  | Stuttered of { agent : Color.t }

let pp_event ppf = function
  | Woke { agent } -> Format.fprintf ppf "%a wakes" Color.pp agent
  | Moved { agent; from_node; to_node } ->
      Format.fprintf ppf "%a moves %d -> %d" Color.pp agent from_node to_node
  | Posted { agent; node; tag } ->
      Format.fprintf ppf "%a posts %s at %d" Color.pp agent tag node
  | Erased { agent; node; tag; count } ->
      Format.fprintf ppf "%a erases %dx %s at %d" Color.pp agent count tag
        node
  | Halted { agent; verdict } ->
      Format.fprintf ppf "%a halts: %a" Color.pp agent Protocol.pp_verdict
        verdict
  | Crashed { agent; node } ->
      Format.fprintf ppf "%a crash-restarts at %d" Color.pp agent node
  | Sign_lost { agent; node; tag } ->
      Format.fprintf ppf "FAULT: %a's post %s at %d is lost" Color.pp agent
        tag node
  | Sign_duplicated { agent; node; tag } ->
      Format.fprintf ppf "FAULT: %a's post %s at %d is duplicated" Color.pp
        agent tag node
  | Wake_delayed { agent; until_turn } ->
      Format.fprintf ppf "FAULT: %a's wake delayed until turn %d" Color.pp
        agent until_turn
  | Stuttered { agent } ->
      Format.fprintf ppf "FAULT: %a's turn stutters" Color.pp agent

type state = {
  world : World.t;
  boards : Whiteboard.t array;
  agents : agent array;
  seed : int;
  on_event : event -> unit;
  faults : FInj.t option;
  mutable clock : int;  (* bumps on every enablement change *)
  mutable num_runnable : int;
  mutable picks : int;  (* scheduler picks — drives Lifo fairness *)
  mutable wakes : int;  (* sleepers woken by a visiting agent's sign *)
  mutable turns : int;  (* scheduler turns so far *)
  mutable delayed_pending : int;  (* agents with a fault-delayed wake *)
  mutable progress_turn : int;
      (* last turn with whiteboard-revision progress — the livelock
         watchdog's reference point *)
}

let set_runnable st a b =
  if a.runnable <> b then begin
    a.runnable <- b;
    st.num_runnable <- (st.num_runnable + if b then 1 else -1)
  end

let enable st a resume_status =
  st.clock <- st.clock + 1;
  a.last_enabled <- st.clock;
  a.status <- resume_status;
  set_runnable st a true

(* Agent-specific presentation order of the ports at a node. *)
let presentation_order st a node =
  let deg = Graph.degree (World.graph st.world) node in
  let perm = Array.init deg Fun.id in
  let rng = Random.State.make [| st.seed; 0x9e11; a.idx; node |] in
  for i = deg - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  perm

let make_obs st a =
  a.reads <- a.reads + 1;
  let node = a.loc in
  let labeling = World.labeling st.world in
  let perm = presentation_order st a node in
  let ports =
    Array.to_list
      (Array.map
         (fun i -> World.symbol_of st.world (Labeling.symbol labeling node i))
         perm)
  in
  {
    Protocol.degree = Array.length perm;
    ports;
    entry = a.entry;
    board = Whiteboard.signs st.boards.(node);
  }

let wake_sleepers_at st node =
  Array.iter
    (fun b ->
      match b.status with
      | Asleep when b.home = node -> (
          match st.faults with
          | Some _ when b.wake_due >= 0 ->
              (* a delayed wake is already pending; this wake is absorbed
                 into it *)
              ()
          | Some inj when FInj.arm inj FKind.Delayed_wake ->
              b.wake_due <- st.turns + FInj.wake_delay inj;
              st.delayed_pending <- st.delayed_pending + 1;
              st.on_event
                (Wake_delayed { agent = b.color; until_turn = b.wake_due })
          | _ ->
              st.wakes <- st.wakes + 1;
              st.on_event (Woke { agent = b.color });
              enable st b (Ready Start))
      | _ -> ())
    st.agents

(* Deliver fault-delayed wakes that have come due ([force] delivers all of
   them — the adversary may not delay a wake forever, so a scheduler with
   nothing else to run releases the backlog instead of reporting a
   spurious deadlock). *)
let release_due_wakes st ~force =
  Array.iter
    (fun b ->
      if b.wake_due >= 0 && (force || b.wake_due <= st.turns) then begin
        b.wake_due <- -1;
        st.delayed_pending <- st.delayed_pending - 1;
        match b.status with
        | Asleep ->
            st.wakes <- st.wakes + 1;
            st.on_event (Woke { agent = b.color });
            enable st b (Ready Start)
        | _ -> ()
      end)
    st.agents

(* A board-revision bump makes every agent waiting on that board runnable;
   marking them here (rather than re-checking revisions in the scheduler)
   is what lets [pick_agent] trust the dirty bits. *)
let wake_waiters_at st node =
  Array.iter
    (fun b ->
      match b.status with
      | Waiting (_, rev)
        when b.loc = node && Whiteboard.revision st.boards.(node) > rev ->
          set_runnable st b true
      | _ -> ())
    st.agents

let post_sign st a tag body =
  Whiteboard.post st.boards.(a.loc) (Sign.make ~color:a.color ~tag ~body ());
  st.progress_turn <- st.turns

let do_post st a tag body =
  a.posts <- a.posts + 1;
  match st.faults with
  | None ->
      post_sign st a tag body;
      st.on_event (Posted { agent = a.color; node = a.loc; tag });
      wake_sleepers_at st a.loc;
      wake_waiters_at st a.loc
  | Some inj ->
      if FInj.arm inj FKind.Sign_loss then
        (* dropped on the floor: no revision bump, no wake-ups; the agent
           believes it posted *)
        st.on_event (Sign_lost { agent = a.color; node = a.loc; tag })
      else begin
        post_sign st a tag body;
        st.on_event (Posted { agent = a.color; node = a.loc; tag });
        if FInj.arm inj FKind.Sign_dup then begin
          post_sign st a tag body;
          st.on_event
            (Sign_duplicated { agent = a.color; node = a.loc; tag })
        end;
        wake_sleepers_at st a.loc;
        wake_waiters_at st a.loc
      end

let do_erase st a tag =
  a.erases <- a.erases + 1;
  let count = Whiteboard.erase st.boards.(a.loc) ~color:a.color ~tag in
  st.on_event (Erased { agent = a.color; node = a.loc; tag; count });
  if count > 0 then begin
    st.progress_turn <- st.turns;
    wake_waiters_at st a.loc
  end;
  count

let do_move st a sym =
  let labeling = World.labeling st.world in
  match
    Labeling.port_of_symbol labeling a.loc (World.int_of_symbol st.world sym)
  with
  | None -> Error "moved through a symbol absent from this node"
  | exception Not_found -> Error "moved through an unknown symbol"
  | Some port ->
      let d = Graph.dart (World.graph st.world) a.loc port in
      let from_node = a.loc in
      a.loc <- d.dst;
      a.entry <-
        Some
          (World.symbol_of st.world
             (Labeling.symbol labeling d.dst d.dst_port));
      a.moves <- a.moves + 1;
      st.on_event (Moved { agent = a.color; from_node; to_node = d.dst });
      Ok ()

let finish st a v =
  a.status <- Finished v;
  set_runnable st a false;
  st.on_event (Halted { agent = a.color; verdict = v })

let start_agent st a (proto : Protocol.t) =
  let ctx =
    {
      Protocol.color = a.color;
      rank = (if proto.quantitative then Some a.idx else None);
    }
  in
  let open Effect.Deep in
  match_with
    (fun () ->
      let v = proto.main ctx in
      finish st a v)
    ()
    {
      retc = Fun.id;
      exnc =
        (fun e -> finish st a (Aborted (Printexc.to_string e)));
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Script.Internal.Observe ->
              Some
                (fun (k : (b, unit) continuation) ->
                  continue k (make_obs st a))
          | Script.Internal.Post (tag, body) ->
              Some
                (fun (k : (b, unit) continuation) ->
                  do_post st a tag body;
                  continue k ())
          | Script.Internal.Erase tag ->
              Some
                (fun (k : (b, unit) continuation) ->
                  continue k (do_erase st a tag))
          | Script.Internal.Move sym ->
              Some
                (fun (k : (b, unit) continuation) ->
                  match do_move st a sym with
                  | Ok () -> enable st a (Ready (Resume k))
                  | Error msg -> finish st a (Aborted msg))
          | Script.Internal.Wait ->
              Some
                (fun (k : (b, unit) continuation) ->
                  a.status <-
                    Waiting (k, Whiteboard.revision st.boards.(a.loc));
                  set_runnable st a false)
          | Script.Internal.Halt v ->
              Some (fun (_k : (b, unit) continuation) -> finish st a v)
          | _ -> None);
    }

let take_turn st proto (a : agent) =
  a.turns <- a.turns + 1;
  let mark_running () =
    (* placeholder replaced by the real verdict inside start_agent /
       the resumed continuation *)
    a.status <- Finished (Aborted "re-entered");
    set_runnable st a false
  in
  match a.status with
  | Ready Start ->
      mark_running ();
      start_agent st a proto
  | Ready (Resume k) ->
      mark_running ();
      Effect.Deep.continue k (make_obs st a)
  | Waiting (k, _) ->
      mark_running ();
      Effect.Deep.continue k (make_obs st a)
  | Asleep | Finished _ -> assert false

(* The picked agent loses its coroutine state: the pending continuation is
   dropped (its fiber is reclaimed by the GC, never resumed) and the agent
   restarts its protocol from scratch, amnesiac, at its current node. *)
let crash_restart st a =
  a.entry <- None;
  enable st a (Ready Start);
  st.on_event (Crashed { agent = a.color; node = a.loc })

(* Crash-restart only fires on agents that actually hold coroutine state;
   "crashing" an agent that has not started yet is a no-op restart. *)
let crashable a =
  match a.status with Ready (Resume _) | Waiting _ -> true | _ -> false

(* Allocation-free selection: the dirty bits plus [num_runnable] replace
   the per-turn candidates list; every strategy is a bounded scan of the
   agents array. *)
let pick_agent st strategy rr_cursor rng =
  let n = Array.length st.agents in
  if st.num_runnable = 0 then None
  else begin
    st.picks <- st.picks + 1;
    match strategy with
    | Round_robin ->
        let rec find offset =
          let a = st.agents.((!rr_cursor + offset) mod n) in
          if a.runnable then begin
            rr_cursor := (a.idx + 1) mod n;
            Some a
          end
          else find (offset + 1)
        in
        find 0
    | Random_fair _ ->
        let r = ref (Random.State.int rng st.num_runnable) in
        let chosen = ref None in
        Array.iter
          (fun a ->
            if a.runnable && !chosen = None then
              if !r = 0 then chosen := Some a else decr r)
          st.agents;
        !chosen
    | Lifo ->
        (* Most-recently-enabled first, with a fairness injection: every
           16th pick goes to the oldest-enabled agent instead, so no
           agent starves (the model assumes fair scheduling). *)
        let oldest_wins = st.picks mod 16 = 0 in
        let best = ref None in
        Array.iter
          (fun a ->
            if a.runnable then
              match !best with
              | None -> best := Some a
              | Some b ->
                  if
                    if oldest_wins then a.last_enabled < b.last_enabled
                    else a.last_enabled > b.last_enabled
                  then best := Some a)
          st.agents;
        !best
    | Fifo_mailbox ->
        let best = ref None in
        Array.iter
          (fun a ->
            if a.runnable then
              match !best with
              | None -> best := Some a
              | Some b ->
                  if a.last_enabled < b.last_enabled then best := Some a)
          st.agents;
        !best
    | Synchronous ->
        (* handled by the round loop in [run]; fallback here *)
        Array.fold_left
          (fun acc a ->
            match acc with Some _ -> acc | None -> if a.runnable then Some a else None)
          None st.agents
  end

let collect_result st ~max_turns_hit ~timeout wall_time_ns =
  let verdicts =
    Array.to_list st.agents
    |> List.map (fun a ->
           ( a.color,
             match a.status with
             | Finished v -> v
             | Asleep -> Protocol.Aborted "asleep (never woken)"
             | _ -> Protocol.Aborted "still running" ))
  in
  let all_done =
    Array.for_all
      (fun a -> match a.status with Finished _ -> true | _ -> false)
      st.agents
  in
  let outcome =
    match timeout with
    | Some reason -> Timeout reason
    | None ->
        if max_turns_hit then Step_limit
        else if not all_done then Deadlock
        else
          let leaders =
            List.filter (fun (_, v) -> v = Protocol.Leader) verdicts
          in
          let failed =
            List.filter (fun (_, v) -> v = Protocol.Election_failed) verdicts
          in
          let aborted =
            List.filter
              (fun (_, v) ->
                match v with Protocol.Aborted _ -> true | _ -> false)
              verdicts
          in
          match (leaders, failed, aborted) with
          | _, _, _ :: _ ->
              Inconsistent
                {
                  reason =
                    Printf.sprintf "%d agents aborted" (List.length aborted);
                  conflicting = aborted;
                }
          | [ (c, _) ], [], [] -> Elected c
          | [], fs, [] when List.length fs = Array.length st.agents ->
              Declared_unsolvable
          | _ ->
              Inconsistent
                {
                  reason =
                    Printf.sprintf "%d leaders, %d failed"
                      (List.length leaders) (List.length failed);
                  conflicting = leaders @ failed;
                }
  in
  let per_agent =
    Array.to_list st.agents
    |> List.map (fun a ->
           ( a.color,
             {
               moves = a.moves;
               posts = a.posts;
               erases = a.erases;
               reads = a.reads;
               turns = a.turns;
             } ))
  in
  let total_moves =
    Array.fold_left (fun acc a -> acc + a.moves) 0 st.agents
  in
  let total_accesses =
    Array.fold_left (fun acc a -> acc + a.posts + a.erases + a.reads) 0
      st.agents
  in
  let final_locations =
    Array.to_list st.agents |> List.map (fun a -> (a.color, a.loc))
  in
  let faults_injected =
    match st.faults with None -> [] | Some inj -> FInj.fired inj
  in
  { outcome; verdicts; per_agent; final_locations; total_moves;
    total_accesses; scheduler_turns = st.turns; wall_time_ns;
    faults_injected }

let pp_outcome ppf = function
  | Elected c -> Format.fprintf ppf "elected %s" (Color.name c)
  | Declared_unsolvable ->
      Format.pp_print_string ppf "all agents report: unsolvable"
  | Deadlock -> Format.pp_print_string ppf "deadlock"
  | Step_limit -> Format.pp_print_string ppf "step limit exceeded"
  | Timeout r ->
      Format.fprintf ppf "watchdog timeout (%s)" (Watchdog.reason_name r)
  | Inconsistent { reason; conflicting } ->
      Format.fprintf ppf "inconsistent verdicts: %s" reason;
      if conflicting <> [] then
        Format.fprintf ppf " [%s]"
          (String.concat "; "
             (List.map
                (fun (c, v) ->
                  Printf.sprintf "%s: %s" (Color.name c)
                    (Protocol.verdict_to_string v))
                conflicting))

let outcome_to_string o = Format.asprintf "%a" pp_outcome o

(* ---------- telemetry (Qe_obs) ---------- *)

module Obs = struct
  module Sink = Qe_obs.Sink
  module Metrics = Qe_obs.Metrics
  module Span = Qe_obs.Span
  module Export = Qe_obs.Export
  module J = Qe_obs.Jsonl

  let export_event seq e =
    let agent c = ("agent", J.String (Color.name c)) in
    match e with
    | Woke { agent = a } -> { Export.seq; name = "woke"; attrs = [ agent a ] }
    | Moved { agent = a; from_node; to_node } ->
        { Export.seq; name = "moved";
          attrs = [ agent a; ("from", J.Int from_node); ("to", J.Int to_node) ] }
    | Posted { agent = a; node; tag } ->
        { Export.seq; name = "posted";
          attrs = [ agent a; ("node", J.Int node); ("tag", J.String tag) ] }
    | Erased { agent = a; node; tag; count } ->
        { Export.seq; name = "erased";
          attrs =
            [ agent a; ("node", J.Int node); ("tag", J.String tag);
              ("count", J.Int count) ] }
    | Halted { agent = a; verdict } ->
        { Export.seq; name = "halted";
          attrs =
            [ agent a; ("verdict", J.String (Protocol.verdict_to_string verdict)) ] }
    | Crashed { agent = a; node } ->
        { Export.seq; name = "crashed";
          attrs = [ agent a; ("node", J.Int node) ] }
    | Sign_lost { agent = a; node; tag } ->
        { Export.seq; name = "sign-lost";
          attrs = [ agent a; ("node", J.Int node); ("tag", J.String tag) ] }
    | Sign_duplicated { agent = a; node; tag } ->
        { Export.seq; name = "sign-dup";
          attrs = [ agent a; ("node", J.Int node); ("tag", J.String tag) ] }
    | Wake_delayed { agent = a; until_turn } ->
        { Export.seq; name = "wake-delayed";
          attrs = [ agent a; ("until", J.Int until_turn) ] }
    | Stuttered { agent = a } ->
        { Export.seq; name = "stuttered"; attrs = [ agent a ] }

  (* Per-run/per-agent counters, recorded once at the end of [run] from
     the engine's own accounting (identical totals, zero hot-path
     cost). *)
  let record_metrics sink st strategy turns =
    let m = sink.Sink.metrics in
    let c name = Metrics.counter m name in
    let total get = Array.fold_left (fun acc a -> acc + get a) 0 st.agents in
    Metrics.incr (c "engine.runs");
    Metrics.add (c "engine.moves") (total (fun a -> a.moves));
    Metrics.add (c "engine.posts") (total (fun a -> a.posts));
    Metrics.add (c "engine.erases") (total (fun a -> a.erases));
    Metrics.add (c "engine.reads") (total (fun a -> a.reads));
    Metrics.add (c "engine.turns") turns;
    Metrics.add (c "engine.wakes") st.wakes;
    Metrics.add (c "engine.picks") st.picks;
    Metrics.add (c ("engine.picks." ^ strategy_name strategy)) st.picks;
    (match st.faults with
    | None -> ()
    | Some inj ->
        Metrics.add (c "fault.injected") (FInj.total inj);
        List.iter
          (fun (k, n) ->
            Metrics.add (c ("fault.injected." ^ FKind.name k)) n)
          (FInj.fired inj));
    let per_agent = Metrics.histogram m "engine.agent.moves" in
    Array.iter
      (fun a ->
        Metrics.observe per_agent a.moves;
        let pfx = "engine.agent." ^ Color.name a.color in
        Metrics.add (c (pfx ^ ".moves")) a.moves;
        Metrics.add (c (pfx ^ ".posts")) a.posts;
        Metrics.add (c (pfx ^ ".erases")) a.erases;
        Metrics.add (c (pfx ^ ".reads")) a.reads;
        Metrics.add (c (pfx ^ ".turns")) a.turns)
      st.agents
end

let run ?strategy ?(seed = 0) ?(max_turns = 2_000_000) ?awake
    ?(on_event = fun _ -> ()) ?obs ?faults ?watchdog world proto =
  let t0 = Qe_obs.Clock.now_ns () in
  let strategy =
    match strategy with Some s -> s | None -> Random_fair seed
  in
  let g = World.graph world in
  (* Telemetry. With [obs = None] (the default) every probe below is an
     untaken [match] branch — the scheduler hot loop is untouched either
     way, since events stream through the existing [on_event] hook and
     counters are read off the engine's own accounting after the run. *)
  let span name =
    match obs with
    | None -> None
    | Some s -> Some (s.Obs.Sink.spans, Obs.Span.enter s.Obs.Sink.spans name)
  in
  let close sp =
    match sp with
    | None -> None
    | Some (tr, sp) -> Some (Obs.Span.exit tr sp)
  in
  (match obs with
  | None -> ()
  | Some s ->
      Obs.Sink.emit s
        (Obs.Export.Meta
           {
             producer = "qelect.engine";
             attrs =
               [
                 ("protocol", Obs.J.String proto.Protocol.name);
                 ("strategy", Obs.J.String (strategy_name strategy));
                 ("seed", Obs.J.Int seed);
                 ("nodes", Obs.J.Int (Graph.n g));
                 ("agents", Obs.J.Int (World.num_agents world));
               ]
               @ (match faults with
                 | None -> []
                 | Some p ->
                     [ ("fault_seed", Obs.J.Int p.FPlan.seed);
                       ("fault_plan", Obs.J.String (FPlan.summary p)) ]);
           }));
  let root = span "engine.run" in
  let on_event =
    match obs with
    | Some ({ on_line = Some _; _ } as s) ->
        let seq = ref 0 in
        fun e ->
          on_event e;
          incr seq;
          Obs.Sink.emit s (Obs.Export.Event (Obs.export_event !seq e))
    | _ -> on_event
  in
  let setup_span = span "setup" in
  let boards = Array.init (Graph.n g) (fun _ -> Whiteboard.create ()) in
  let agents =
    Array.init (World.num_agents world) (fun i ->
        {
          idx = i;
          color = World.color_of_agent world i;
          home = World.home_of_agent world i;
          loc = World.home_of_agent world i;
          entry = None;
          status = Asleep;
          runnable = false;
          last_enabled = 0;
          wake_due = -1;
          moves = 0;
          posts = 0;
          erases = 0;
          reads = 0;
          turns = 0;
        })
  in
  let st =
    { world; boards; agents; seed; on_event;
      faults = Option.map FInj.create faults;
      clock = 0; num_runnable = 0; picks = 0; wakes = 0; turns = 0;
      delayed_pending = 0; progress_turn = 0 }
  in
  (* The environment marks every home-base with a sign of the owner's
     color before anything runs. These environment marks are not agent
     posts, so sign faults never touch them. *)
  Array.iter
    (fun a ->
      Whiteboard.post boards.(a.home)
        (Sign.make ~color:a.color ~tag:home_tag ()))
    agents;
  let awake =
    match awake with
    | Some l -> l
    | None -> List.init (Array.length agents) Fun.id
  in
  (* An empty awake set is legal: nothing can ever run, so the scheduler
     loop exits immediately and the run reports a clean [Deadlock]. *)
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length agents then
        invalid_arg "Engine.run: awake index out of range";
      enable st agents.(i) (Ready Start))
    awake;
  ignore (close setup_span);
  let loop_span = span "schedule" in
  let rng =
    match strategy with
    | Random_fair s -> Random.State.make [| s; 0xfa12 |]
    | _ -> Random.State.make [| seed |]
  in
  let rr_cursor = ref 0 in
  let max_hit = ref false in
  let timeout = ref None in
  (* One watchdog probe per scheduler iteration; with [watchdog = None]
     it is a single untaken match branch. The wall clock is only read
     every 256 turns. *)
  let watchdog_fired () =
    match watchdog with
    | None -> false
    | Some wd ->
        (match wd.Watchdog.turn_budget with
        | Some b when st.turns >= b ->
            timeout := Some Watchdog.Turn_budget
        | _ -> ());
        (match wd.Watchdog.livelock_window with
        | Some w when st.turns - st.progress_turn >= w ->
            timeout := Some Watchdog.Livelock
        | _ -> ());
        (match wd.Watchdog.wall_ns with
        | Some ns
          when st.turns land 255 = 0 && Qe_obs.Clock.now_ns () - t0 > ns ->
            timeout := Some Watchdog.Wall_clock
        | _ -> ());
        !timeout <> None
  in
  (* One scheduler turn for [a], with fault injection when a plan is
     armed: a stutter consumes the turn without running the agent; a
     crash-restart discards the agent's coroutine state. *)
  let step a =
    st.turns <- st.turns + 1;
    if st.turns > max_turns then max_hit := true
    else
      match st.faults with
      | None -> take_turn st proto a
      | Some inj ->
          if FInj.arm inj FKind.Turn_stutter then
            st.on_event (Stuttered { agent = a.color })
          else if crashable a && FInj.arm inj FKind.Crash_restart then
            crash_restart st a
          else take_turn st proto a
  in
  (match strategy with
  | Synchronous ->
      let continue_running = ref true in
      while !continue_running && not !max_hit && !timeout = None do
        if st.delayed_pending > 0 then release_due_wakes st ~force:false;
        if not (watchdog_fired ()) then begin
          let round =
            Array.to_list st.agents |> List.filter (fun a -> a.runnable)
          in
          if round = [] then begin
            if st.delayed_pending > 0 then release_due_wakes st ~force:true
            else continue_running := false
          end
          else
            List.iter
              (fun a ->
                if a.runnable && not !max_hit && !timeout = None then step a)
              round
        end
      done
  | _ ->
      let continue_running = ref true in
      while !continue_running && not !max_hit && !timeout = None do
        if st.delayed_pending > 0 then release_due_wakes st ~force:false;
        if not (watchdog_fired ()) then
          match pick_agent st strategy rr_cursor rng with
          | None ->
              if st.delayed_pending > 0 then release_due_wakes st ~force:true
              else continue_running := false
          | Some a -> step a
      done);
  ignore (close loop_span);
  let collect_span = span "collect" in
  let result =
    collect_result st ~max_turns_hit:!max_hit ~timeout:!timeout
      (Qe_obs.Clock.now_ns () - t0)
  in
  ignore (close collect_span);
  (match obs with
  | None -> ()
  | Some s ->
      Obs.record_metrics s st strategy st.turns;
      Obs.Metrics.observe
        (Obs.Metrics.latency s.Obs.Sink.metrics "engine.run_latency")
        result.wall_time_ns;
      (match root with
      | Some (tr, sp) ->
          Obs.Span.add_attr sp "turns" (Obs.J.Int st.turns);
          Obs.Span.add_attr sp "moves" (Obs.J.Int result.total_moves);
          let closed = Obs.Span.exit tr sp in
          Obs.Sink.emit s (Obs.Export.Span_tree closed)
      | None -> ());
      Obs.Sink.emit s
        (Obs.Export.Metric_snapshot (Obs.Metrics.snapshot s.Obs.Sink.metrics)));
  result
