(** Deterministic, seeded fault plans.

    A plan is a pure description: per-kind firing rates, the wake-delay
    length, and a global fault budget. It carries no mutable state — the
    per-run decision stream lives in {!Injector}. Two runs of the same
    engine configuration under the same plan inject exactly the same
    faults at exactly the same points.

    Rates are probabilities in [0, 1], evaluated independently at each
    injection point of the matching kind (see {!Kind.t} for what one
    "point" is per kind). The [budget] caps the {e total} number of
    faults a plan may inject in one run; once exhausted, the execution's
    suffix is fault-free — which is what lets chaos runs on solvable
    instances terminate instead of being crash-restarted forever. *)

type t = {
  seed : int;  (** drives the injector's private decision stream *)
  crash_restart : float;  (** per scheduled turn of a stateful agent *)
  sign_loss : float;  (** per agent post *)
  sign_dup : float;  (** per agent post (evaluated after loss) *)
  delayed_wake : float;  (** per would-be sleeper wake *)
  wake_delay : int;  (** suppression length, in scheduler turns *)
  turn_stutter : float;  (** per scheduled turn *)
  budget : int;  (** max total faults injected per run *)
}

val none : t
(** All rates zero, budget zero: observationally identical to running
    with no plan at all (tested). *)

val make :
  ?crash_restart:float ->
  ?sign_loss:float ->
  ?sign_dup:float ->
  ?delayed_wake:float ->
  ?wake_delay:int ->
  ?turn_stutter:float ->
  ?budget:int ->
  seed:int ->
  unit ->
  t
(** Rates default to 0, [wake_delay] to 8, [budget] to 16. Rates are
    clamped to [0, 1]; [wake_delay] and [budget] to be non-negative. *)

val chaos : seed:int -> t
(** The default chaotic mix used by [qelect chaos] and
    {!Qe_elect.Campaign.chaos_sweep}: every kind enabled at a low rate
    (crash-restart 0.2%, sign-loss and sign-dup 0.5%, delayed-wake 5%,
    turn-stutter 1%), wake delay 8, budget 16. Tuned so the sweep
    exercises every injection point while the fault count per run stays
    small enough to observe ELECT's safety envelope. *)

val crash_only : seed:int -> t
(** Crash-restart only (rate 1%, budget 4): the plan behind the
    liveness invariant "crash-restart runs on solvable Cayley instances
    still terminate". *)

val rate : t -> Kind.t -> float
(** The configured rate for one kind ([wake_delay]/[budget] aside). *)

val enabled : t -> bool
(** [true] iff some kind has a positive rate and the budget is
    positive — i.e. the plan can fire at all. *)

val summary : t -> string
(** One-line human description, e.g.
    ["seed 3: crash-restart=0.002 sign-loss=0.005 ... budget=16"]. *)
