type t = {
  wall_ns : int option;
  turn_budget : int option;
  livelock_window : int option;
}

let make ?wall_ns ?turn_budget ?livelock_window () =
  let check what = function
    | Some v when v < 0 -> invalid_arg ("Watchdog.make: negative " ^ what)
    | _ -> ()
  in
  check "wall_ns" wall_ns;
  check "turn_budget" turn_budget;
  check "livelock_window" livelock_window;
  { wall_ns; turn_budget; livelock_window }

type reason = Wall_clock | Turn_budget | Livelock

let reason_name = function
  | Wall_clock -> "wall-clock"
  | Turn_budget -> "turn-budget"
  | Livelock -> "livelock"

let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)
