(** The five fault kinds the engine can inject.

    Each kind names one injection point inside {!Qe_runtime.Engine}:

    - [Crash_restart] — fires when a runnable agent with coroutine state
      (a pending continuation) is scheduled: the continuation is
      discarded and the agent restarts its protocol from scratch,
      amnesiac-style, at whatever node it currently occupies.
    - [Sign_loss] — fires on an agent's whiteboard post: the sign is
      silently dropped (no revision bump, no wake-ups); the agent
      believes it posted.
    - [Sign_dup] — fires on an agent's whiteboard post: the sign is
      written twice.
    - [Delayed_wake] — fires when a visiting agent's sign would wake a
      sleeping agent: the wake notification is suppressed for a bounded
      number of scheduler turns (never forever — the engine force-releases
      pending wakes rather than report a spurious deadlock).
    - [Turn_stutter] — fires when an agent is scheduled: its turn is
      consumed without the agent running.

    The environment's own setup-time home-base marks are never subject to
    sign faults; only agent-issued posts are. *)

type t =
  | Crash_restart
  | Sign_loss
  | Sign_dup
  | Delayed_wake
  | Turn_stutter

val all : t list
(** Every kind, in declaration order. *)

val name : t -> string
(** Stable lowercase name ("crash-restart", "sign-loss", "sign-dup",
    "delayed-wake", "turn-stutter") — used in metric names
    ([fault.injected.<name>]), trace events and CLI tables. *)

val pp : Format.formatter -> t -> unit
