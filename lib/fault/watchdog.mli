(** Run watchdogs: hard budgets that turn a wedged or livelocked run into
    a structured [Timeout] outcome instead of an indistinct [Step_limit]
    or a hung process.

    All three budgets are optional and independent:

    - [wall_ns] — monotonic wall-clock budget for the whole run
      ({!Qe_obs.Clock}); checked every 256 scheduler turns to keep the
      probe off the hot path.
    - [turn_budget] — scheduler-turn budget. Unlike [Engine.run
      ~max_turns] (which yields [Step_limit]), exceeding a watchdog turn
      budget yields [Timeout Turn_budget] — scripts can tell "the
      experiment's step cap" apart from "the watchdog fired".
    - [livelock_window] — the no-progress window: if this many
      consecutive scheduler turns pass without a single whiteboard
      revision (no effective post, no effective erase), the run is
      declared livelocked. Agents that merely walk forever make no board
      progress, which is exactly the failure mode this catches; protocols
      legitimately quiet for long stretches need a wider window. *)

type t = {
  wall_ns : int option;
  turn_budget : int option;
  livelock_window : int option;
}

val make :
  ?wall_ns:int -> ?turn_budget:int -> ?livelock_window:int -> unit -> t
(** All [None] by default; negative values are rejected with
    [Invalid_argument]. *)

type reason = Wall_clock | Turn_budget | Livelock

val reason_name : reason -> string
(** "wall-clock" | "turn-budget" | "livelock". *)

val pp_reason : Format.formatter -> reason -> unit
