type t = {
  plan : Plan.t;
  rngs : (Kind.t * Random.State.t) list;
  counts : int array;  (* indexed by Kind.all position *)
  mutable total : int;
}

let kind_index k =
  let rec go i = function
    | [] -> assert false
    | k' :: tl -> if k = k' then i else go (i + 1) tl
  in
  go 0 Kind.all

let create plan =
  {
    plan;
    rngs =
      List.mapi
        (fun i k -> (k, Random.State.make [| plan.Plan.seed; 0xfa417; i |]))
        Kind.all;
    counts = Array.make (List.length Kind.all) 0;
    total = 0;
  }

let plan t = t.plan
let wake_delay t = t.plan.Plan.wake_delay
let count t k = t.counts.(kind_index k)
let total t = t.total

let arm t k =
  let rate = Plan.rate t.plan k in
  if rate <= 0. || t.total >= t.plan.Plan.budget then false
  else
    let rng = List.assoc k t.rngs in
    let fire = Random.State.float rng 1.0 < rate in
    if fire then begin
      t.counts.(kind_index k) <- t.counts.(kind_index k) + 1;
      t.total <- t.total + 1
    end;
    fire

let fired t =
  List.filter_map
    (fun k ->
      let n = count t k in
      if n > 0 then Some (k, n) else None)
    Kind.all
