type t = {
  seed : int;
  crash_restart : float;
  sign_loss : float;
  sign_dup : float;
  delayed_wake : float;
  wake_delay : int;
  turn_stutter : float;
  budget : int;
}

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let make ?(crash_restart = 0.) ?(sign_loss = 0.) ?(sign_dup = 0.)
    ?(delayed_wake = 0.) ?(wake_delay = 8) ?(turn_stutter = 0.)
    ?(budget = 16) ~seed () =
  {
    seed;
    crash_restart = clamp01 crash_restart;
    sign_loss = clamp01 sign_loss;
    sign_dup = clamp01 sign_dup;
    delayed_wake = clamp01 delayed_wake;
    wake_delay = max 0 wake_delay;
    turn_stutter = clamp01 turn_stutter;
    budget = max 0 budget;
  }

let none = make ~budget:0 ~seed:0 ()

let chaos ~seed =
  make ~crash_restart:0.002 ~sign_loss:0.005 ~sign_dup:0.005
    ~delayed_wake:0.05 ~wake_delay:8 ~turn_stutter:0.01 ~budget:16 ~seed ()

let crash_only ~seed = make ~crash_restart:0.01 ~budget:4 ~seed ()

let rate t = function
  | Kind.Crash_restart -> t.crash_restart
  | Kind.Sign_loss -> t.sign_loss
  | Kind.Sign_dup -> t.sign_dup
  | Kind.Delayed_wake -> t.delayed_wake
  | Kind.Turn_stutter -> t.turn_stutter

let enabled t =
  t.budget > 0 && List.exists (fun k -> rate t k > 0.) Kind.all

let summary t =
  Printf.sprintf
    "seed %d: crash-restart=%g sign-loss=%g sign-dup=%g delayed-wake=%g \
     (delay %d) turn-stutter=%g budget=%d"
    t.seed t.crash_restart t.sign_loss t.sign_dup t.delayed_wake
    t.wake_delay t.turn_stutter t.budget
