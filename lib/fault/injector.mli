(** The per-run mutable face of a {!Plan}: a seeded decision stream plus
    fired-fault accounting.

    The engine holds one injector per run and calls {!arm} at each
    injection point. Decisions are drawn from a private RNG derived from
    the plan seed (one independent stream per kind), so consulting the
    injector never perturbs the engine's own scheduling RNG — a plan
    whose rates are all zero is observationally invisible. *)

type t

val create : Plan.t -> t

val plan : t -> Plan.t

val arm : t -> Kind.t -> bool
(** One decision at an injection point of this kind: [true] iff the
    fault fires here. Fires only while the plan's budget is not
    exhausted; a [true] consumes one unit of budget and is recorded.
    A kind with rate 0 never fires and draws nothing. *)

val wake_delay : t -> int
(** The plan's wake suppression length, in scheduler turns. *)

val fired : t -> (Kind.t * int) list
(** How many faults of each kind fired so far; kinds with zero count are
    omitted. Order follows {!Kind.all}. *)

val count : t -> Kind.t -> int

val total : t -> int
(** Total faults fired ([<= (plan t).budget]). *)
