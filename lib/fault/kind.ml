type t =
  | Crash_restart
  | Sign_loss
  | Sign_dup
  | Delayed_wake
  | Turn_stutter

let all = [ Crash_restart; Sign_loss; Sign_dup; Delayed_wake; Turn_stutter ]

let name = function
  | Crash_restart -> "crash-restart"
  | Sign_loss -> "sign-loss"
  | Sign_dup -> "sign-dup"
  | Delayed_wake -> "delayed-wake"
  | Turn_stutter -> "turn-stutter"

let pp ppf k = Format.pp_print_string ppf (name k)
