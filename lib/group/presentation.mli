(** Implicit (presentation-style) groups and the large-instance Cayley
    generator.

    {!Group.t} stores an O(n²) multiplication table — fine at order ≤
    a few thousand, hopeless at the 10⁵–10⁶ element orders the frontier
    targets. A {!t} here is just [order] plus [mul]/[inv] closures;
    constructions compose arithmetically (mixed-radix encodings), and
    every encoding agrees element-for-element with the corresponding
    {!Group} construction where both exist, so differential tests can
    compare them directly.

    {!cayley} streams a Cayley graph straight into {!Qe_graph.Csr} flat
    arrays (edge conventions identical to [Cayley.build_edges]), attaches
    the natural edge labeling (the port toward [v] at [u] carries the
    generator [u⁻¹v]) and registers a transitivity witness — the left
    translations — on the graph for {!Qe_symmetry.Transitive} to verify. *)

type t

val order : t -> int
val name : t -> string

val mul : t -> int -> int -> int
val inv : t -> int -> int
val is_involution : t -> int -> bool
val elt_order : t -> int -> int

val of_group : Group.t -> t
(** Wrap a table-based group (for differential tests and reuse). *)

val cyclic : int -> t
(** Z_n; same encoding as {!Group.cyclic}. *)

val product : t -> t -> t
(** Direct product; [(a, b)] encoded as [a * order h + b], matching
    {!Group.product}. *)

val power : t -> int -> t
(** Iterated product, first factor most significant ({!Group.power}). *)

val dihedral : int -> t
(** D_n on [2n] elements; encoding matches {!Group.dihedral}. *)

val wreath_shift : base:int -> int -> t
(** [wreath_shift ~base d] is the wreath-like product [Z_base ≀ Z_d] =
    Z_base^d ⋊ Z_d (cyclic coordinate shift), order [base^d * d].
    Element [(w, i)] is encoded [w * d + i], [w] a base-[base] digit
    vector. *)

val semidirect_shift : int -> t
(** [wreath_shift ~base:2] — bit-identical to {!Group.semidirect_shift};
    its Cayley graph on generators [{shift, flip_0}] is CCC_d. *)

val generates : t -> int list -> bool
(** BFS closure from the identity under the given elements and their
    inverses — O(order × generators), allocation-bounded. *)

(** {1 Large Cayley instances} *)

type instance = {
  graph : Qe_graph.Graph.t;
  labeling : Qe_graph.Labeling.t;
  connection : int list;
      (** the connection set: generators closed under inverse, sorted *)
  group : t;
}

val cayley : t -> int list -> instance
(** [cayley p gens] builds the Cayley graph of [p] on [gens] (closed
    under inverses), streamed into CSR with no intermediate edge list.
    Edge ids and ports follow exactly the [Cayley.make] conventions, so
    small instances are structurally identical to their table-based
    counterparts.
    @raise Invalid_argument if a generator is the identity or out of
    range, or the set does not generate the group. *)

val circulant : int -> int list -> instance
(** [circulant n jumps] — Z_n with the given jump set. *)

val cube_connected_cycles : int -> instance
(** CCC_d for any [d >= 3] — [cayley (semidirect_shift d) [shift; flip_0]];
    order [d * 2^d], so [d = 13] already exceeds 10⁵ nodes. *)
