(** Cayley graphs [Cay(Γ, S)] with their natural generator labeling.

    Nodes are the group elements; [{a, a·s}] is an edge for each [s ∈ S].
    The natural labeling puts symbol [s = u⁻¹v] on the port of [u] toward
    [v] — the labeling used in the proof of Theorem 4.1, preserved by every
    translation [a ↦ γa]. *)

type t

val make : Genset.t -> t

val graph : t -> Qe_graph.Graph.t
val labeling : t -> Qe_graph.Labeling.t
(** The natural labeling; the symbol on a port is the generator's element
    id. *)

val group : t -> Group.t
val genset : t -> Genset.t

val port_generator : t -> int -> int -> int
(** [port_generator c u i] is the generator [s] with
    [dart c u i = u * s]. *)

val translation : t -> int -> int -> int
(** [translation c gamma a = gamma * a] — the node map of the translation
    automorphism [φ_γ]. *)

val is_automorphism : t -> (int -> int) -> bool
(** Checks a node map is a graph automorphism (ignores labels). *)

val translation_preserves_labeling : t -> int -> bool
(** Sanity of the Theorem 4.1 claim: every translation preserves the
    natural labeling ([(γx)⁻¹(γy) = x⁻¹y]). Always true; exercised in
    tests. *)

val color_preserving_translations : t -> black:int list -> int list
(** The subgroup [{γ : γ · blacks = blacks}] (as element list, sorted) of
    translations preserving a placement. *)

val translation_classes : t -> black:int list -> int list list
(** Orbits of the nodes under {!color_preserving_translations}: the
    translation-equivalence classes of Section 4. Classes are sorted by
    their minimum node; each class is sorted. *)

(** {1 Standard networks as Cayley graphs} *)

val ring : int -> t
val hypercube : int -> t
val complete : int -> t
val torus : int -> int -> t
(** Sides [>= 3]. *)

val circulant : int -> int list -> t
val star_graph : int -> t
(** The star network [ST_k] = [Cay(S_k, {(1 i) transpositions})],
    [3 <= k <= 6]. *)

val cube_connected_cycles : int -> t
(** [CCC(d) = Cay(Z_2^d ⋊ Z_d, {shift, shift⁻¹, flip_0})], [d >= 3]. *)

val dihedral_cayley : int -> t
(** [Cay(D_n, {s, sr})] — a [2n]-cycle presentation of the dihedral
    group. *)
