module Graph = Qe_graph.Graph
module Csr = Qe_graph.Csr
module Labeling = Qe_graph.Labeling

(* Implicit groups: order + multiplication/inverse closures instead of
   the O(n^2) table {!Group.t} stores. Element encodings agree with the
   corresponding {!Group} constructions wherever both exist (verified in
   the test suite), so small presentations are drop-in table
   replacements and large ones scale to 10^5-10^6 elements. *)
type t = {
  order : int;
  mul : int -> int -> int;
  inv : int -> int;
  name : string;
}

let order p = p.order
let name p = p.name
let mul p = p.mul
let inv p = p.inv
let is_involution p s = s <> 0 && p.mul s s = 0

let elt_order p a =
  let rec go x k = if x = 0 then k else go (p.mul x a) (k + 1) in
  if a = 0 then 1 else go a 1

let of_group g =
  {
    order = Group.order g;
    mul = Group.mul g;
    inv = Group.inv g;
    name = Group.name g;
  }

let cyclic n =
  if n < 1 then invalid_arg "Presentation.cyclic";
  {
    order = n;
    mul = (fun a b -> (a + b) mod n);
    inv = (fun a -> (n - a) mod n);
    name = Printf.sprintf "Z%d" n;
  }

(* (a, b) encoded as a * |h| + b — identical to {!Group.product}. *)
let product g h =
  let oh = h.order in
  {
    order = g.order * oh;
    mul =
      (fun x y ->
        (g.mul (x / oh) (y / oh) * oh) + h.mul (x mod oh) (y mod oh));
    inv = (fun x -> (g.inv (x / oh) * oh) + h.inv (x mod oh));
    name = g.name ^ "x" ^ h.name;
  }

let power g k =
  if k < 1 then invalid_arg "Presentation.power";
  let rec go acc k = if k = 0 then acc else go (product acc g) (k - 1) in
  go g (k - 1)

let dihedral n =
  if n < 1 then invalid_arg "Presentation.dihedral";
  let md x = ((x mod n) + n) mod n in
  let mul x y =
    match (x < n, y < n) with
    | true, true -> md (x + y)
    | true, false -> n + md (y - n - x)
    | false, true -> n + md (x - n + y)
    | false, false -> md (y - x)
  in
  let inv x = if x < n then md (-x) else x in
  { order = 2 * n; mul; inv; name = Printf.sprintf "D%d" n }

(* Z_base^d ⋊ Z_d with the cyclic coordinate shift — the wreath-like
   product Z_base ≀ Z_d. Element (w, i) is encoded [w * d + i] with [w]
   a base-[base] digit vector; for [base = 2] this is bit-for-bit
   {!Group.semidirect_shift} (whose Cayley graph is CCC_d). *)
let wreath_shift ~base d =
  if base < 2 then invalid_arg "Presentation.wreath_shift: base must be >= 2";
  if d < 1 then invalid_arg "Presentation.wreath_shift: d must be >= 1";
  let pow_base = Array.make (d + 1) 1 in
  for i = 1 to d do
    pow_base.(i) <- pow_base.(i - 1) * base
  done;
  let nw = pow_base.(d) in
  let digit w b = w / pow_base.(b) mod base in
  (* digit b of shift_i(w) is digit ((b - i) mod d) of w *)
  let shift w i =
    if i = 0 then w
    else begin
      let r = ref 0 in
      for b = 0 to d - 1 do
        let src = (((b - i) mod d) + d) mod d in
        r := !r + (digit w src * pow_base.(b))
      done;
      !r
    end
  in
  let add w w' =
    let r = ref 0 in
    for b = 0 to d - 1 do
      r := !r + ((digit w b + digit w' b) mod base * pow_base.(b))
    done;
    !r
  in
  let neg w =
    let r = ref 0 in
    for b = 0 to d - 1 do
      r := !r + ((base - digit w b) mod base * pow_base.(b))
    done;
    !r
  in
  let mul x y =
    let w = x / d and i = x mod d in
    let w' = y / d and i' = y mod d in
    ((add w (shift w' i)) * d) + ((i + i') mod d)
  in
  let inv x =
    let w = x / d and i = x mod d in
    let i' = (d - i) mod d in
    (shift (neg w) i' * d) + i'
  in
  {
    order = nw * d;
    mul;
    inv;
    name = Printf.sprintf "Z%d^%d:Z%d" base d d;
  }

let semidirect_shift d = wreath_shift ~base:2 d

(* BFS closure over the generators (and their inverses) from the
   identity — bool array + int queue, O(n * |gens|). *)
let generates p gens =
  let n = p.order in
  let seen = Array.make n false in
  let queue = Array.make n 0 in
  seen.(0) <- true;
  let head = ref 0 and tail = ref 1 in
  let push b =
    if not seen.(b) then begin
      seen.(b) <- true;
      queue.(!tail) <- b;
      incr tail
    end
  in
  while !head < !tail do
    let a = queue.(!head) in
    incr head;
    List.iter
      (fun s ->
        push (p.mul a s);
        push (p.mul a (p.inv s)))
      gens
  done;
  !tail = n

(* ------------------------------------------------------------------ *)
(* The large-instance generator: a Cayley graph streamed straight into
   CSR — no edge lists, no per-node tables — with the natural labeling
   (port toward v at u carries u⁻¹v) and a transitivity witness (left
   translations) registered on the graph. *)

type instance = {
  graph : Graph.t;
  labeling : Labeling.t;
  connection : int list;
  group : t;
}

let cayley p gens =
  if gens = [] then invalid_arg "Presentation.cayley: empty generating set";
  List.iter
    (fun s ->
      if s <= 0 || s >= p.order then
        invalid_arg "Presentation.cayley: generator out of range (or identity)")
    gens;
  let connection =
    List.sort_uniq compare
      (List.concat_map (fun s -> [ s; p.inv s ]) gens)
  in
  if not (generates p connection) then
    invalid_arg "Presentation.cayley: set does not generate the group";
  let n = p.order in
  (* Edge conventions identical to [Cayley.build_edges]: per generator in
     sorted connection order — involutions once from their smaller
     endpoint, non-involutions via the smaller of {s, s⁻¹}. *)
  let invol = List.filter (is_involution p) connection in
  let canon =
    List.filter (fun s -> (not (is_involution p s)) && s < p.inv s) connection
  in
  (* each involution pairs nodes perfectly: n/2 edges *)
  let m = (List.length invol * n / 2) + (List.length canon * n) in
  let edge_u = Array.make m 0 and edge_v = Array.make m 0 in
  let k = ref 0 in
  List.iter
    (fun s ->
      if is_involution p s then
        for a = 0 to n - 1 do
          let b = p.mul a s in
          if a < b then begin
            edge_u.(!k) <- a;
            edge_v.(!k) <- b;
            incr k
          end
        done
      else if s < p.inv s then
        for a = 0 to n - 1 do
          edge_u.(!k) <- a;
          edge_v.(!k) <- p.mul a s;
          incr k
        done)
    connection;
  assert (!k = m);
  let csr = Csr.of_endpoints ~n edge_u edge_v in
  let graph = Graph.of_csr csr in
  (* port symbol = the generator this dart follows: u⁻¹ v *)
  let labeling =
    Labeling.make graph (fun u i ->
        p.mul (p.inv u) csr.Csr.dst.(csr.Csr.off.(u) + i))
  in
  Graph.set_transitivity_witness graph
    {
      Graph.w_gens =
        Array.of_list
          (List.map
             (fun s -> Array.init n (fun a -> p.mul s a))
             connection);
      w_translation = (fun w -> Array.init n (fun a -> p.mul w a));
    };
  { graph; labeling; connection; group = p }

let circulant n jumps = cayley (cyclic n) jumps

let cube_connected_cycles d =
  if d < 3 then
    invalid_arg "Presentation.cube_connected_cycles: need d >= 3";
  cayley (semidirect_shift d) [ 1; d ]
