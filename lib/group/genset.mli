(** Generating sets [S] with [S = S⁻¹], as required by Definition 1.2. *)

type t

val make : Group.t -> int list -> t
(** Validates and normalises a candidate generating set: the identity is
    rejected, duplicates removed, inverses added (the paper assumes
    [S = S⁻¹]), and the set must generate the group.
    @raise Invalid_argument otherwise. *)

val group : t -> Group.t
val elements : t -> int list
(** Sorted, duplicate-free, closed under inverse, identity-free. *)

val size : t -> int
val mem : t -> int -> bool
val involutions : t -> int list
val non_involutions : t -> int list
val all_non_identity : Group.t -> t
(** The full generating set [Γ \ {id}] — gives the complete graph. *)

val pp : Format.formatter -> t -> unit
