type t = { group : Group.t; elements : int list }

let make group gens =
  if gens = [] then invalid_arg "Genset.make: empty generating set";
  List.iter
    (fun s ->
      if s <= 0 || s >= Group.order group then
        invalid_arg "Genset.make: generator out of range (or identity)")
    gens;
  let with_inv = List.concat_map (fun s -> [ s; Group.inv group s ]) gens in
  let elements = List.sort_uniq compare with_inv in
  if not (Group.generates group elements) then
    invalid_arg "Genset.make: set does not generate the group";
  { group; elements }

let group t = t.group
let elements t = t.elements
let size t = List.length t.elements
let mem t s = List.mem s t.elements
let involutions t = List.filter (Group.is_involution t.group) t.elements

let non_involutions t =
  List.filter (fun s -> not (Group.is_involution t.group s)) t.elements

let all_non_identity group =
  make group (List.filter (fun a -> a <> 0) (Group.elements group))

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (Group.elt_name t.group) t.elements))
