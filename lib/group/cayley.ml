module Graph = Qe_graph.Graph
module Labeling = Qe_graph.Labeling

type t = {
  genset : Genset.t;
  graph : Graph.t;
  labeling : Labeling.t;
}

let build_edges group gens =
  let n = Group.order group in
  let edges = ref [] in
  (* Each unordered edge {a, a*s} is listed exactly once: involutions from
     their smaller endpoint, non-involutions via the smaller of {s, s⁻¹}. *)
  List.iter
    (fun s ->
      if Group.is_involution group s then
        for a = 0 to n - 1 do
          let b = Group.mul group a s in
          if a < b then edges := (a, b) :: !edges
        done
      else if s < Group.inv group s then
        for a = 0 to n - 1 do
          edges := (a, Group.mul group a s) :: !edges
        done)
    gens;
  List.rev !edges

let make genset =
  let group = Genset.group genset in
  let n = Group.order group in
  let graph = Graph.of_edges ~n (build_edges group (Genset.elements genset)) in
  (* The symbol of the port of [u] toward [v] is the generator u⁻¹v. *)
  let labeling =
    Labeling.make graph (fun u i ->
        let d = Graph.dart graph u i in
        Group.mul group (Group.inv group u) d.dst)
  in
  (* Left translations witness vertex-transitivity; the symmetry layer
     verifies before trusting ([Qe_symmetry.Transitive]). *)
  Graph.set_transitivity_witness graph
    {
      Graph.w_gens =
        Array.of_list
          (List.map
             (fun s -> Array.init n (fun a -> Group.mul group s a))
             (Genset.elements genset));
      w_translation = (fun w -> Array.init n (fun a -> Group.mul group w a));
    };
  { genset; graph; labeling }

let graph t = t.graph
let labeling t = t.labeling
let group t = Genset.group t.genset
let genset t = t.genset

let port_generator t u i =
  let d = Graph.dart t.graph u i in
  Group.mul (group t) (Group.inv (group t) u) d.dst

let translation t gamma a = Group.mul (group t) gamma a

let is_automorphism t f =
  let g = t.graph in
  let n = Graph.n g in
  let image = Array.init n f in
  let is_perm =
    let seen = Array.make n false in
    Array.for_all
      (fun v -> v >= 0 && v < n && not seen.(v) && (seen.(v) <- true; true))
      image
  in
  is_perm
  &&
  (* Compare edge multisets between images. *)
  let count tbl key delta =
    let cur = try Hashtbl.find tbl key with Not_found -> 0 in
    Hashtbl.replace tbl key (cur + delta)
  in
  let tbl = Hashtbl.create (2 * Graph.m g) in
  List.iter
    (fun (u, v) ->
      count tbl (min u v, max u v) 1;
      let fu = image.(u) and fv = image.(v) in
      count tbl (min fu fv, max fu fv) (-1))
    (Graph.edges g);
  Hashtbl.fold (fun _ c acc -> acc && c = 0) tbl true

let translation_preserves_labeling t gamma =
  let g = t.graph in
  let grp = group t in
  let ok = ref true in
  for u = 0 to Graph.n g - 1 do
    for i = 0 to Graph.degree g u - 1 do
      let v = (Graph.dart g u i).dst in
      let s = Group.mul grp (Group.inv grp u) v in
      let gu = Group.mul grp gamma u and gv = Group.mul grp gamma v in
      let s' = Group.mul grp (Group.inv grp gu) gv in
      if s <> s' then ok := false
    done
  done;
  !ok

let color_preserving_translations t ~black =
  let grp = group t in
  let is_black = Array.make (Group.order grp) false in
  List.iter (fun b -> is_black.(b) <- true) black;
  List.filter
    (fun gamma ->
      List.for_all (fun b -> is_black.(Group.mul grp gamma b)) black)
    (Group.elements grp)

let translation_classes t ~black =
  let grp = group t in
  let ts = color_preserving_translations t ~black in
  let n = Group.order grp in
  let assigned = Array.make n false in
  let classes = ref [] in
  for u = 0 to n - 1 do
    if not assigned.(u) then begin
      let orbit =
        List.sort_uniq compare (List.map (fun gamma -> Group.mul grp gamma u) ts)
      in
      List.iter (fun v -> assigned.(v) <- true) orbit;
      classes := orbit :: !classes
    end
  done;
  List.rev !classes

(* --- Standard networks --- *)

let ring n = make (Genset.make (Group.cyclic n) [ 1 ])

let hypercube d =
  let grp = Group.power (Group.cyclic 2) d in
  (* In the iterated product the first factor is most significant, so the
     unit vectors are the powers of two. *)
  make (Genset.make grp (List.init d (fun i -> 1 lsl i)))

let complete n = make (Genset.all_non_identity (Group.cyclic n))

let torus a b =
  if a < 3 || b < 3 then invalid_arg "Cayley.torus: sides must be >= 3";
  let grp = Group.product (Group.cyclic a) (Group.cyclic b) in
  make (Genset.make grp [ b (* (1,0) *); 1 (* (0,1) *) ])

let circulant n jumps = make (Genset.make (Group.cyclic n) jumps)

let star_graph k =
  if k < 3 || k > 6 then invalid_arg "Cayley.star_graph: need 3 <= k <= 6";
  let grp = Group.symmetric k in
  (* Generators are the transpositions (0 i); find them by their one-line
     notation name. *)
  let transposition i =
    let p = Array.init k Fun.id in
    p.(0) <- i;
    p.(i) <- 0;
    let nm = String.concat "" (Array.to_list (Array.map string_of_int p)) in
    let rec find a =
      if a >= Group.order grp then failwith "transposition not found"
      else if Group.elt_name grp a = nm then a
      else find (a + 1)
    in
    find 0
  in
  make (Genset.make grp (List.init (k - 1) (fun i -> transposition (i + 1))))

let cube_connected_cycles d =
  if d < 3 then invalid_arg "Cayley.cube_connected_cycles: need d >= 3";
  let grp = Group.semidirect_shift d in
  (* shift = (0,1) has element id 1; flip_0 = (e_0, 0) has id d. *)
  make (Genset.make grp [ 1; d ])

let dihedral_cayley n =
  if n < 2 then invalid_arg "Cayley.dihedral_cayley: need n >= 2";
  let grp = Group.dihedral n in
  make (Genset.make grp [ n; n + 1 ])
