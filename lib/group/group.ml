type t = {
  order : int;
  mul_table : int array array;
  inv_table : int array;
  name : string;
  elt_names : string array;
}

let id = 0

let of_mul_table ?(name = "G") ?elt_names table =
  let n = Array.length table in
  if n = 0 then invalid_arg "Group.of_mul_table: empty table";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Group.of_mul_table: table not square";
      Array.iter
        (fun x ->
          if x < 0 || x >= n then
            invalid_arg "Group.of_mul_table: entry out of range")
        row)
    table;
  for a = 0 to n - 1 do
    if table.(0).(a) <> a || table.(a).(0) <> a then
      invalid_arg "Group.of_mul_table: element 0 is not the identity"
  done;
  let assoc a b c =
    if table.(table.(a).(b)).(c) <> table.(a).(table.(b).(c)) then
      invalid_arg "Group.of_mul_table: not associative"
  in
  if n <= 256 then
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        for c = 0 to n - 1 do
          assoc a b c
        done
      done
    done
  else begin
    (* Exhaustive checking is O(n^3); for large tables spot-check a
       deterministic sample instead (constructions in this library are
       associative by construction, the check guards against typos). *)
    let st = Random.State.make [| n; 0x5eed |] in
    for _ = 1 to 2_000_000 do
      assoc (Random.State.int st n) (Random.State.int st n)
        (Random.State.int st n)
    done
  end;
  let inv_table = Array.make n (-1) in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if table.(a).(b) = 0 then inv_table.(a) <- b
    done
  done;
  Array.iteri
    (fun a i ->
      if i < 0 then
        invalid_arg
          (Printf.sprintf "Group.of_mul_table: element %d has no inverse" a))
    inv_table;
  let elt_names =
    match elt_names with
    | Some names when Array.length names = n -> names
    | Some _ -> invalid_arg "Group.of_mul_table: wrong number of names"
    | None -> Array.init n string_of_int
  in
  { order = n; mul_table = table; inv_table; name; elt_names }

let order g = g.order
let name g = g.name
let elt_name g a = g.elt_names.(a)
let mul g a b = g.mul_table.(a).(b)
let inv g a = g.inv_table.(a)
let elements g = List.init g.order Fun.id

let elt_order g a =
  let rec go x k = if x = 0 then k else go (mul g x a) (k + 1) in
  if a = 0 then 1 else go a 1

let is_abelian g =
  let ok = ref true in
  for a = 0 to g.order - 1 do
    for b = 0 to g.order - 1 do
      if mul g a b <> mul g b a then ok := false
    done
  done;
  !ok

let is_involution g a = a <> 0 && mul g a a = 0

let pow g a k =
  if k < 0 then invalid_arg "Group.pow: negative exponent";
  let rec go acc x k =
    if k = 0 then acc
    else go (if k land 1 = 1 then mul g acc x else acc) (mul g x x) (k lsr 1)
  in
  go 0 a k

let closure g gens =
  let seen = Array.make g.order false in
  seen.(0) <- true;
  let q = Queue.create () in
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let a = Queue.pop q in
    List.iter
      (fun s ->
        let b = mul g a s in
        if not seen.(b) then begin
          seen.(b) <- true;
          Queue.add b q
        end;
        let c = mul g a (inv g s) in
        if not seen.(c) then begin
          seen.(c) <- true;
          Queue.add c q
        end)
      gens
  done;
  List.filter (fun a -> seen.(a)) (elements g)

let generates g gens = List.length (closure g gens) = g.order
let conjugate g a x = mul g (mul g x a) (inv g x)

(* --- Constructions --- *)

let cyclic n =
  if n < 1 then invalid_arg "Group.cyclic";
  let table = Array.init n (fun a -> Array.init n (fun b -> (a + b) mod n)) in
  of_mul_table ~name:(Printf.sprintf "Z%d" n) table

let product g h =
  let n = g.order * h.order in
  let encode a b = (a * h.order) + b in
  let table =
    Array.init n (fun x ->
        let xa = x / h.order and xb = x mod h.order in
        Array.init n (fun y ->
            let ya = y / h.order and yb = y mod h.order in
            encode (mul g xa ya) (mul h xb yb)))
  in
  let elt_names =
    Array.init n (fun x ->
        Printf.sprintf "(%s,%s)"
          g.elt_names.(x / h.order)
          h.elt_names.(x mod h.order))
  in
  of_mul_table ~name:(g.name ^ "x" ^ h.name) ~elt_names table

let power g k =
  if k < 1 then invalid_arg "Group.power";
  let rec go acc k = if k = 0 then acc else go (product acc g) (k - 1) in
  go g (k - 1)

let dihedral n =
  if n < 1 then invalid_arg "Group.dihedral";
  (* Elements: rotations r^i (0..n-1), reflections s*r^i (n..2n-1), with
     r^i * r^j = r^{i+j}, r^i * sr^j = sr^{j-i}, sr^i * r^j = sr^{i+j},
     sr^i * sr^j = r^{j-i}. *)
  let sz = 2 * n in
  let md x = ((x mod n) + n) mod n in
  let table =
    Array.init sz (fun x ->
        Array.init sz (fun y ->
            match (x < n, y < n) with
            | true, true -> md (x + y)
            | true, false -> n + md (y - n - x)
            | false, true -> n + md (x - n + y)
            | false, false -> md (y - x)))
  in
  let elt_names =
    Array.init sz (fun x ->
        if x < n then Printf.sprintf "r%d" x else Printf.sprintf "sr%d" (x - n))
  in
  of_mul_table ~name:(Printf.sprintf "D%d" n) ~elt_names table

let permutation_group ~name ~k keep =
  (* Enumerate permutations of [0..k-1] (identity first), keep those
     accepted by [keep], and build the table by composition. *)
  let rec perms avail =
    if avail = [] then [ [] ]
    else
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) avail in
          List.map (fun p -> x :: p) (perms rest))
        (List.sort compare avail)
  in
  let all = perms (List.init k Fun.id) in
  let all =
    Array.of_list
      (List.filter keep (List.map Array.of_list all))
  in
  (* Identity is the sorted permutation, first in lexicographic order and
     always kept (even permutation). *)
  assert (all.(0) = Array.init k Fun.id);
  let index = Hashtbl.create (Array.length all) in
  Array.iteri (fun i p -> Hashtbl.add index p i) all;
  let compose p q = Array.init k (fun i -> p.(q.(i))) in
  let n = Array.length all in
  let table =
    Array.init n (fun a ->
        Array.init n (fun b -> Hashtbl.find index (compose all.(a) all.(b))))
  in
  let elt_names =
    Array.map
      (fun p ->
        String.concat "" (Array.to_list (Array.map string_of_int p)))
      all
  in
  of_mul_table ~name ~elt_names table

let symmetric k =
  if k < 1 || k > 6 then invalid_arg "Group.symmetric: need 1 <= k <= 6";
  permutation_group ~name:(Printf.sprintf "S%d" k) ~k (fun _ -> true)

let parity p =
  (* number of inversions mod 2 *)
  let n = Array.length p in
  let inv = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if p.(i) > p.(j) then incr inv
    done
  done;
  !inv land 1

let alternating k =
  if k < 2 || k > 6 then invalid_arg "Group.alternating: need 2 <= k <= 6";
  permutation_group ~name:(Printf.sprintf "A%d" k) ~k (fun p -> parity p = 0)

let quaternion () =
  (* Elements: 1, -1, i, -i, j, -j, k, -k as 0..7. Encoded via sign (bit 0)
     and axis (bits 1-2): axis 0 = 1, 1 = i, 2 = j, 3 = k. *)
  let enc axis sign = (axis * 2) + sign in
  let mul_q (a_ax, a_s) (b_ax, b_s) =
    (* quaternion unit multiplication: table over axes with a sign *)
    let ax, s =
      match (a_ax, b_ax) with
      | 0, b -> (b, 0)
      | a, 0 -> (a, 0)
      | 1, 1 -> (0, 1)
      | 2, 2 -> (0, 1)
      | 3, 3 -> (0, 1)
      | 1, 2 -> (3, 0)
      | 2, 1 -> (3, 1)
      | 2, 3 -> (1, 0)
      | 3, 2 -> (1, 1)
      | 3, 1 -> (2, 0)
      | 1, 3 -> (2, 1)
      | _ -> assert false
    in
    (ax, (s + a_s + b_s) mod 2)
  in
  let table =
    Array.init 8 (fun x ->
        Array.init 8 (fun y ->
            let ax, s = mul_q (x / 2, x mod 2) (y / 2, y mod 2) in
            enc ax s))
  in
  let elt_names = [| "1"; "-1"; "i"; "-i"; "j"; "-j"; "k"; "-k" |] in
  of_mul_table ~name:"Q8" ~elt_names table

let semidirect_shift d =
  if d < 1 then invalid_arg "Group.semidirect_shift";
  (* Elements (w, i): w in Z_2^d, i in Z_d. (w, i) * (w', i') =
     (w xor shift_i(w'), i + i') where shift_i rotates coordinates left by
     i: bit b of shift_i(w') is bit (b - i mod d) of w'. *)
  let n = (1 lsl d) * d in
  let enc w i = (w * d) + i in
  let shift w i =
    let r = ref 0 in
    for b = 0 to d - 1 do
      let src = ((b - i) mod d + d) mod d in
      if (w lsr src) land 1 = 1 then r := !r lor (1 lsl b)
    done;
    !r
  in
  let table =
    Array.init n (fun x ->
        let w = x / d and i = x mod d in
        Array.init n (fun y ->
            let w' = y / d and i' = y mod d in
            enc (w lxor shift w' i) ((i + i') mod d)))
  in
  let elt_names =
    Array.init n (fun x -> Printf.sprintf "(%d,%d)" (x / d) (x mod d))
  in
  of_mul_table ~name:(Printf.sprintf "Z2^%d:Z%d" d d) ~elt_names table

let isomorphic_as_tables g h =
  g.order = h.order && g.mul_table = h.mul_table

(* greedy generating set: repeatedly adjoin the smallest element outside
   the closure *)
let greedy_generators g =
  let rec go gens covered =
    if List.length covered = g.order then List.rev gens
    else
      let x =
        List.find (fun a -> not (List.mem a covered)) (elements g)
      in
      go (x :: gens) (closure g (x :: gens))
  in
  go [] (closure g [])

let order_profile g =
  List.sort compare (List.map (elt_order g) (elements g))

let find_isomorphism g h =
  if order g <> order h then None
  else if order_profile g <> order_profile h then None
  else if is_abelian g <> is_abelian h then None
  else begin
    let n = order g in
    let gens = greedy_generators g in
    (* candidates per generator: elements of h with the same order *)
    let candidates =
      List.map
        (fun s ->
          let os = elt_order g s in
          List.filter (fun x -> elt_order h x = os) (elements h))
        gens
    in
    (* given generator images, extend to the full map by BFS over words;
       the BFS construction makes the map a homomorphism whenever it is
       consistent *)
    let extend images =
      let map = Array.make n (-1) in
      map.(0) <- 0;
      let q = Queue.create () in
      Queue.add 0 q;
      let ok = ref true in
      while !ok && not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter2
          (fun s img ->
            let y = mul g x s in
            let fy = mul h map.(x) img in
            if map.(y) = -1 then begin
              map.(y) <- fy;
              Queue.add y q
            end
            else if map.(y) <> fy then ok := false)
          gens images
      done;
      if not !ok then None
      else begin
        (* bijective? *)
        let seen = Array.make n false in
        let bij = ref true in
        Array.iter
          (fun v ->
            if v < 0 || seen.(v) then bij := false else seen.(v) <- true)
          map;
        if !bij then Some map else None
      end
    in
    let rec search chosen = function
      | [] -> extend (List.rev chosen)
      | cands :: rest ->
          List.fold_left
            (fun acc c ->
              match acc with
              | Some _ -> acc
              | None -> search (c :: chosen) rest)
            None cands
    in
    search [] candidates
  end

let isomorphic g h = find_isomorphism g h <> None

let catalog =
  lazy
    (let entries = ref [] in
     let add name g = entries := (name, g) :: !entries in
     (* cyclics first so that aliases resolve to the cyclic name *)
     for n = 1 to 24 do
       add (Printf.sprintf "Z%d" n) (cyclic n)
     done;
     (* abelian products (order <= 24) *)
     List.iter
       (fun factors ->
         let name =
           String.concat "x" (List.map (Printf.sprintf "Z%d") factors)
         in
         let grp =
           List.fold_left
             (fun acc f -> product acc (cyclic f))
             (cyclic (List.hd factors))
             (List.tl factors)
         in
         add name grp)
       [
         [ 2; 2 ]; [ 2; 4 ]; [ 2; 2; 2 ]; [ 3; 3 ]; [ 2; 6 ]; [ 2; 8 ];
         [ 4; 4 ]; [ 2; 2; 4 ]; [ 2; 2; 2; 2 ]; [ 2; 10 ]; [ 3; 6 ];
         [ 2; 12 ]; [ 2; 2; 6 ]; [ 4; 5 ];
       ];
     (* dihedral *)
     for k = 3 to 12 do
       add (Printf.sprintf "D%d" k) (dihedral k)
     done;
     add "Q8" (quaternion ());
     add "A4" (alternating 4);
     add "S4" (symmetric 4);
     add "Z2^2:Z2" (semidirect_shift 2);
     add "Z2^3:Z3" (semidirect_shift 3);
     add "Z3xZ2^2" (product (cyclic 3) (product (cyclic 2) (cyclic 2)));
     List.rev !entries)

let identify g =
  if order g > 24 then None
  else
    List.find_map
      (fun (name, h) ->
        if order h = order g && isomorphic g h then Some name else None)
      (Lazy.force catalog)

let pp ppf g = Format.fprintf ppf "%s (order %d)" g.name g.order
